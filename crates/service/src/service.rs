//! The resident service: one shared [`DurableEngine`] behind a reader
//! pool and a single serialized writer.
//!
//! # Concurrency regime
//!
//! The engine sits in an [`RwLock`]. Read-mostly concrete queries
//! (`abort`/`delete`/`eval`/`stats`) go to a pool of reader threads that
//! share the read lock — the concrete evaluation entry points take
//! `&Engine`, so any number run at once. Everything that mutates
//! (appends, symbolic views, equivalence, snapshots, budgets) serializes
//! through **one** writer thread holding the write lock, so "durable
//! before visible" needs no further protocol: [`DurableEngine`] fsyncs
//! before it swaps state in, and the write lock keeps every reader out
//! until the swap is complete. No response can reflect a partially
//! applied append — the soak test pins this from the outside.
//!
//! # Coalescing
//!
//! Each worker drains its queue opportunistically: one blocking `recv`,
//! then up to `coalesce_max - 1` more by `try_recv`. A drained batch is
//! served under **one** lock acquisition with **one** sequence number,
//! and bursts of same-shaped requests collapse into the engine's batch
//! entry points — concurrent aborts share one topo schedule
//! ([`Engine::abort_symbolic_batch`], [`uprov_engine::Engine::eval_tuples_batch`]),
//! consecutive appends commit behind one fsync
//! ([`DurableEngine::append_many`]), equivalence bursts normalize in one
//! sweep ([`Engine::equivalent_many`]). Batched answers are bit-identical
//! to one-at-a-time answers (pinned by the interleaving tests).
//!
//! # Backpressure and shutdown
//!
//! Queues are bounded; a full queue rejects immediately with a typed
//! [`ErrorKind::Overloaded`] response instead of blocking the client.
//! [`Service::shutdown`] flips `accepting` off (new requests get
//! [`ErrorKind::ShuttingDown`]), then pushes one stop sentinel per worker
//! through each FIFO queue — everything enqueued before the sentinel is
//! served, nothing is dropped — and joins the threads.
//!
//! # Determinism hooks
//!
//! A service started with [`ServiceConfig::paused`] keeps its workers
//! parked on a gate while clients enqueue; [`Service::resume`] releases
//! them. Tests use this to pin exactly which requests coalesce into one
//! batch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use uprov_core::Atom;
use uprov_engine::{Engine, ReplayState, SymbolicTuple, UpdateLog};
use uprov_storage::{DurableEngine, DurableError, Storage};

use crate::proto::{ErrorKind, Request, Response, SymbolicRow};
use crate::values::{eval_rows_batch, StructureId};

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Reader threads sharing the read lock. Must be ≥ 1.
    pub readers: usize,
    /// Capacity of each bounded request queue; a full queue answers
    /// [`ErrorKind::Overloaded`].
    pub queue_depth: usize,
    /// Max requests one worker drains into a single coalesced batch.
    pub coalesce_max: usize,
    /// Worker-pool threads for concrete evaluation (`0` = auto, see
    /// [`uprov_core::resolve_threads`]).
    pub eval_threads: usize,
    /// Start with the workers parked; release with [`Service::resume`].
    pub paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            readers: 2,
            queue_depth: 64,
            coalesce_max: 16,
            eval_threads: 0,
            paused: false,
        }
    }
}

/// Counters reported by [`Service::shutdown`] and the `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Coalesced batches executed (each = one lock acquisition).
    pub batches: u64,
    /// Requests that rode a batch of two or more.
    pub coalesced: u64,
}

struct Job {
    client: u64,
    req: Request,
    reply: SyncSender<Response>,
}

enum WorkerMsg {
    Work(Box<Job>),
    Stop,
}

struct Inner<S: Storage> {
    db: RwLock<DurableEngine<S>>,
    accepting: AtomicBool,
    /// `false` while paused; workers wait here before each drain.
    running: Mutex<bool>,
    gate: Condvar,
    /// Per-client requested cache budgets; the tightest one is applied to
    /// the shared engine (the PR 5 epoch valve), so no client can exceed
    /// its own cap by riding another client's slack.
    budgets: Mutex<BTreeMap<u64, usize>>,
    batches: AtomicU64,
    coalesced: AtomicU64,
    eval_threads: usize,
    next_client: AtomicU64,
}

impl<S: Storage> Inner<S> {
    fn wait_running(&self) {
        let mut running = self.running.lock().expect("gate poisoned");
        while !*running {
            running = self.gate.wait(running).expect("gate poisoned");
        }
    }

    fn note_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if len >= 2 {
            self.coalesced.fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

fn durable_error(e: &DurableError) -> Response {
    match e {
        DurableError::Io(io) => error(ErrorKind::Io, io.to_string()),
        DurableError::Replay(r) => error(ErrorKind::Replay, r.to_string()),
    }
}

/// Writes serialize; concrete reads share the read lock.
fn is_write(req: &Request) -> bool {
    matches!(
        req,
        Request::Append { .. }
            | Request::AbortSymbolic { .. }
            | Request::Equiv { .. }
            | Request::Snapshot
            | Request::SetBudget { .. }
            | Request::Shutdown
    )
}

/// A client handle: cheap to clone, one per connection/thread. All
/// requests block until their response arrives (or the service drains
/// away, which answers [`ErrorKind::ShuttingDown`]).
pub struct Client<S: Storage> {
    inner: Arc<Inner<S>>,
    read_tx: SyncSender<WorkerMsg>,
    write_tx: SyncSender<WorkerMsg>,
    id: u64,
}

impl<S: Storage> Clone for Client<S> {
    fn clone(&self) -> Self {
        Client {
            inner: Arc::clone(&self.inner),
            read_tx: self.read_tx.clone(),
            write_tx: self.write_tx.clone(),
            id: self.inner.next_client.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl<S: Storage> Client<S> {
    /// This client's id (budget-map key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True until shutdown begins — [`Service::is_accepting`] through a
    /// client handle, so connection loops that only hold clients (the
    /// accept loop's sessions) can watch the gate too.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::SeqCst)
    }

    /// Submits a request and blocks for the response.
    ///
    /// Never panics and never blocks on a full queue: overload and
    /// shutdown come back as typed [`Response::Error`]s.
    pub fn request(&self, req: Request) -> Response {
        if !self.inner.accepting.load(Ordering::SeqCst) {
            return error(ErrorKind::ShuttingDown, "service is draining");
        }
        let (reply, rx) = sync_channel(1);
        let queue = if is_write(&req) {
            &self.write_tx
        } else {
            &self.read_tx
        };
        let job = WorkerMsg::Work(Box::new(Job {
            client: self.id,
            req,
            reply,
        }));
        match queue.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                return error(ErrorKind::Overloaded, "request queue is full, retry later");
            }
            Err(TrySendError::Disconnected(_)) => {
                return error(ErrorKind::ShuttingDown, "service is gone");
            }
        }
        rx.recv()
            .unwrap_or_else(|_| error(ErrorKind::ShuttingDown, "request dropped during drain"))
    }

    /// Serves one protocol line: parse, execute, print. Malformed input
    /// becomes a printed [`ErrorKind::Parse`] response — the connection
    /// loops in `main.rs` and the proto tests both go through here.
    pub fn serve_line(&self, line: &str) -> String {
        let resp = match line.parse::<Request>() {
            Ok(req) => self.request(req),
            Err(e) => error(ErrorKind::Parse, e.to_string()),
        };
        resp.to_string()
    }
}

/// The resident service. See the [module docs](self) for the regime.
pub struct Service<S: Storage + Send + Sync + 'static> {
    inner: Arc<Inner<S>>,
    read_tx: SyncSender<WorkerMsg>,
    write_tx: SyncSender<WorkerMsg>,
    workers: Vec<JoinHandle<()>>,
}

impl<S: Storage + Send + Sync + 'static> Service<S> {
    /// Spawns the reader pool and the writer over an opened engine.
    pub fn start(db: DurableEngine<S>, config: ServiceConfig) -> Service<S> {
        assert!(config.readers >= 1, "a service needs at least one reader");
        assert!(config.coalesce_max >= 1, "coalesce_max must be >= 1");
        let inner = Arc::new(Inner {
            db: RwLock::new(db),
            accepting: AtomicBool::new(true),
            running: Mutex::new(!config.paused),
            gate: Condvar::new(),
            budgets: Mutex::new(BTreeMap::new()),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            eval_threads: config.eval_threads,
            next_client: AtomicU64::new(0),
        });
        let (read_tx, read_rx) = sync_channel(config.queue_depth);
        let (write_tx, write_rx) = sync_channel(config.queue_depth);
        let read_rx = Arc::new(Mutex::new(read_rx));
        let mut workers = Vec::with_capacity(config.readers + 1);
        for i in 0..config.readers {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&read_rx);
            let max = config.coalesce_max;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("uprov-read-{i}"))
                    .spawn(move || reader_loop(&inner, &rx, max))
                    .expect("spawn reader"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            let max = config.coalesce_max;
            workers.push(
                std::thread::Builder::new()
                    .name("uprov-write".to_owned())
                    .spawn(move || writer_loop(&inner, &write_rx, max))
                    .expect("spawn writer"),
            );
        }
        Service {
            inner,
            read_tx,
            write_tx,
            workers,
        }
    }

    /// A new client handle.
    pub fn client(&self) -> Client<S> {
        Client {
            inner: Arc::clone(&self.inner),
            read_tx: self.read_tx.clone(),
            write_tx: self.write_tx.clone(),
            id: self.inner.next_client.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Opens the pause gate ([`ServiceConfig::paused`]). Idempotent.
    pub fn resume(&self) {
        let mut running = self.inner.running.lock().expect("gate poisoned");
        *running = true;
        self.inner.gate.notify_all();
    }

    /// True until shutdown begins.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// queued (FIFO order guarantees nothing jumps the sentinel), join
    /// the workers, and report the coalescing counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain_and_join();
        self.inner.stats()
    }

    /// [`Service::shutdown`] that also hands back the engine, when this
    /// handle is the sole owner (every [`Client`] dropped). Tests use it
    /// to inspect the drained state and storage — e.g. counting fsync
    /// barriers behind a coalesced append burst — or to restart the
    /// service over the same storage.
    pub fn shutdown_into(mut self) -> (ServiceStats, Option<DurableEngine<S>>) {
        self.drain_and_join();
        let stats = self.inner.stats();
        let inner = Arc::clone(&self.inner);
        // Drop the handle (drain_and_join already ran, so this is just
        // field cleanup); with every Client gone too, the clone below is
        // the final owner.
        drop(self);
        let db = Arc::try_unwrap(inner)
            .ok()
            .map(|inner| inner.db.into_inner().expect("engine lock poisoned"));
        (stats, db)
    }

    fn drain_and_join(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.resume(); // a paused service must still drain
        let readers = self.workers.len() - 1;
        for _ in 0..readers {
            // Blocking send: the queue is draining, so capacity frees up.
            let _ = self.read_tx.send(WorkerMsg::Stop);
        }
        let _ = self.write_tx.send(WorkerMsg::Stop);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: Storage + Send + Sync + 'static> Drop for Service<S> {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

// ---------------------------------------------------------------------------
// Worker loops.

/// Drains one batch: a blocking `recv`, then opportunistic `try_recv` up
/// to `max` total. Returns the jobs plus whether a stop sentinel was hit
/// (each sentinel terminates exactly one worker — the one that drains it).
fn drain(rx: &Mutex<Receiver<WorkerMsg>>, max: usize) -> (Vec<Job>, bool) {
    let rx = rx.lock().expect("queue poisoned");
    let mut jobs = Vec::new();
    match rx.recv() {
        Ok(WorkerMsg::Work(job)) => jobs.push(*job),
        Ok(WorkerMsg::Stop) | Err(_) => return (jobs, true),
    }
    while jobs.len() < max {
        match rx.try_recv() {
            Ok(WorkerMsg::Work(job)) => jobs.push(*job),
            Ok(WorkerMsg::Stop) => return (jobs, true),
            Err(_) => break,
        }
    }
    (jobs, false)
}

fn reader_loop<S: Storage>(inner: &Inner<S>, rx: &Mutex<Receiver<WorkerMsg>>, max: usize) {
    loop {
        inner.wait_running();
        let (jobs, stop) = drain(rx, max);
        if !jobs.is_empty() {
            inner.note_batch(jobs.len());
            serve_read_batch(inner, jobs);
        }
        if stop {
            return;
        }
    }
}

fn writer_loop<S: Storage>(inner: &Inner<S>, rx: &Receiver<WorkerMsg>, max: usize) {
    loop {
        inner.wait_running();
        let (jobs, stop) = drain_unshared(rx, max);
        if !jobs.is_empty() {
            inner.note_batch(jobs.len());
            serve_write_batch(inner, jobs);
        }
        if stop {
            return;
        }
    }
}

// The writer owns its receiver; no mutex needed. Kept separate from
// `drain` so readers pay the lock and the writer doesn't.
fn drain_unshared(rx: &Receiver<WorkerMsg>, max: usize) -> (Vec<Job>, bool) {
    let mut jobs = Vec::new();
    match rx.recv() {
        Ok(WorkerMsg::Work(job)) => jobs.push(*job),
        Ok(WorkerMsg::Stop) | Err(_) => return (jobs, true),
    }
    while jobs.len() < max {
        match rx.try_recv() {
            Ok(WorkerMsg::Work(job)) => jobs.push(*job),
            Ok(WorkerMsg::Stop) => return (jobs, true),
            Err(_) => break,
        }
    }
    (jobs, false)
}

// ---------------------------------------------------------------------------
// Read path: one read-lock acquisition, one seq, per-structure grouping.

fn serve_read_batch<S: Storage>(inner: &Inner<S>, jobs: Vec<Job>) {
    let db = inner.db.read().expect("engine lock poisoned");
    let seq = db.seq();
    let engine = db.engine();
    let state = db.state();
    let mut responses: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
    // Concrete queries group by structure: every entry of a group rides
    // one `eval_tuples_batch` call, sharing one evaluation schedule.
    let mut groups: BTreeMap<StructureId, Vec<(usize, Option<Atom>)>> = BTreeMap::new();
    for (ix, job) in jobs.iter().enumerate() {
        match &job.req {
            Request::EvalAll { structure } => {
                groups.entry(*structure).or_default().push((ix, None));
            }
            Request::AbortEval { txn, structure } => match state.txn_atom(txn) {
                Some(atom) => groups.entry(*structure).or_default().push((ix, Some(atom))),
                None => {
                    responses[ix] = Some(error(
                        ErrorKind::Query,
                        format!("unknown transaction `{txn}`"),
                    ));
                }
            },
            Request::DeleteBaseEval { tuple, structure } => match state.base_atom(tuple) {
                Some(atom) => groups.entry(*structure).or_default().push((ix, Some(atom))),
                None => {
                    responses[ix] = Some(error(
                        ErrorKind::Query,
                        format!("unknown base tuple `{tuple}`"),
                    ));
                }
            },
            Request::Stats => {
                let s = inner.stats();
                responses[ix] = Some(Response::Stats {
                    seq,
                    tuples: state.tuples().count() as u64,
                    nodes: engine.arena().len() as u64,
                    cached: engine.cached_entries() as u64,
                    batches: s.batches,
                    coalesced: s.coalesced,
                });
            }
            // Routing sent a write here; answer honestly instead of
            // panicking a worker.
            other => {
                responses[ix] = Some(error(
                    ErrorKind::Query,
                    format!("request routed to reader is not a read: {other}"),
                ));
            }
        }
    }
    for (id, members) in groups {
        let zeroed: Vec<Option<Atom>> = members.iter().map(|(_, z)| *z).collect();
        let rows = eval_rows_batch(engine, state, id, &zeroed, inner.eval_threads);
        for ((ix, _), rows) in members.into_iter().zip(rows) {
            responses[ix] = Some(Response::Rows { seq, rows });
        }
    }
    drop(db);
    for (job, resp) in jobs.into_iter().zip(responses) {
        let resp = resp.expect("every read job answered");
        let _ = job.reply.send(resp);
    }
}

// ---------------------------------------------------------------------------
// Write path: one write-lock acquisition; consecutive same-kind runs
// collapse into the engine's batch entry points.

fn serve_write_batch<S: Storage>(inner: &Inner<S>, jobs: Vec<Job>) {
    let mut db = inner.db.write().expect("engine lock poisoned");
    let mut responses: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
    let mut i = 0;
    while i < jobs.len() {
        let run_end = run_end(&jobs, i);
        match &jobs[i].req {
            Request::Append { .. } => {
                serve_appends(&mut db, &jobs[i..run_end], &mut responses[i..run_end])
            }
            Request::AbortSymbolic { .. } => {
                serve_symbolic(&mut db, &jobs[i..run_end], &mut responses[i..run_end])
            }
            Request::Equiv { .. } => {
                serve_equiv(&mut db, &jobs[i..run_end], &mut responses[i..run_end])
            }
            Request::Snapshot => {
                let resp = match db.snapshot() {
                    Ok(()) => Response::Snapshotted { seq: db.seq() },
                    Err(e) => durable_error(&e),
                };
                responses[i] = Some(resp);
            }
            Request::SetBudget { entries } => {
                {
                    let mut budgets = inner.budgets.lock().expect("budgets poisoned");
                    match entries {
                        Some(n) => {
                            budgets.insert(jobs[i].client, *n as usize);
                        }
                        None => {
                            budgets.remove(&jobs[i].client);
                        }
                    }
                    let effective = budgets.values().min().copied();
                    db.query().0.set_cache_budget(effective);
                }
                responses[i] = Some(Response::BudgetSet { seq: db.seq() });
            }
            Request::Shutdown => {
                inner.accepting.store(false, Ordering::SeqCst);
                responses[i] = Some(Response::Bye { seq: db.seq() });
            }
            other => {
                responses[i] = Some(error(
                    ErrorKind::Query,
                    format!("request routed to writer is not a write: {other}"),
                ));
            }
        }
        i = run_end;
    }
    drop(db);
    for (job, resp) in jobs.into_iter().zip(responses) {
        let resp = resp.expect("every write job answered");
        let _ = job.reply.send(resp);
    }
}

/// End of the maximal run of batchable same-kind requests starting at `i`.
/// Only the three kinds with batch entry points form runs; everything
/// else is a run of one.
fn run_end(jobs: &[Job], i: usize) -> usize {
    fn kind(req: &Request) -> Option<u8> {
        match req {
            Request::Append { .. } => Some(0),
            Request::AbortSymbolic { .. } => Some(1),
            Request::Equiv { .. } => Some(2),
            _ => None,
        }
    }
    let Some(k) = kind(&jobs[i].req) else {
        return i + 1;
    };
    let mut end = i + 1;
    while end < jobs.len() && kind(&jobs[end].req) == Some(k) {
        end += 1;
    }
    end
}

/// A run of appends: parse each, group-commit the well-formed ones
/// behind one fsync, answer per-log verdicts. Each accepted log's `seq`
/// is its own 1-based position — the prefix an oracle must replay to
/// reproduce the response.
fn serve_appends<S: Storage>(
    db: &mut DurableEngine<S>,
    jobs: &[Job],
    responses: &mut [Option<Response>],
) {
    let mut logs: Vec<UpdateLog> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    for (ix, job) in jobs.iter().enumerate() {
        let Request::Append { log } = &job.req else {
            unreachable!("run_end grouped a non-append into an append run");
        };
        match log.parse::<UpdateLog>() {
            Ok(parsed) => {
                logs.push(parsed);
                owners.push(ix);
            }
            Err(e) => responses[ix] = Some(error(ErrorKind::Parse, e.to_string())),
        }
    }
    if logs.is_empty() {
        return;
    }
    match db.append_many(&logs) {
        Ok(verdicts) => {
            let mut seq = db.seq() - verdicts.iter().filter(|v| v.is_ok()).count() as u64;
            for (ix, verdict) in owners.into_iter().zip(verdicts) {
                responses[ix] = Some(match verdict {
                    Ok(applied) => {
                        seq += 1;
                        Response::Appended {
                            seq,
                            applied: applied as u64,
                        }
                    }
                    Err(e) => error(ErrorKind::Replay, e.to_string()),
                });
            }
        }
        Err(e) => {
            // Storage failure: batch-atomic, nothing applied.
            let resp = durable_error(&e);
            for ix in owners {
                responses[ix] = Some(resp.clone());
            }
        }
    }
}

fn render_symbolic(engine: &Engine, view: Vec<SymbolicTuple>) -> Vec<SymbolicRow> {
    view.into_iter()
        .map(|t| SymbolicRow {
            name: t.name,
            provenance: engine.render(t.provenance),
            saturated: t.saturated,
        })
        .collect()
}

/// A run of symbolic aborts: unknown transactions answer per-request,
/// the rest share one incremental normalization batch.
fn serve_symbolic<S: Storage>(
    db: &mut DurableEngine<S>,
    jobs: &[Job],
    responses: &mut [Option<Response>],
) {
    let seq = db.seq();
    let (engine, state) = db.query();
    let mut txns: Vec<&str> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    for (ix, job) in jobs.iter().enumerate() {
        let Request::AbortSymbolic { txn } = &job.req else {
            unreachable!("run_end grouped a non-abort into a symbolic run");
        };
        if state.txn_atom(txn).is_some() {
            txns.push(txn);
            owners.push(ix);
        } else {
            responses[ix] = Some(error(
                ErrorKind::Query,
                format!("unknown transaction `{txn}`"),
            ));
        }
    }
    if txns.is_empty() {
        return;
    }
    let views = engine
        .abort_symbolic_batch(state, &txns)
        .expect("names resolved under the same lock");
    for (ix, view) in owners.into_iter().zip(views) {
        responses[ix] = Some(Response::Symbolic {
            seq,
            rows: render_symbolic(engine, view),
        });
    }
}

/// A run of equivalence queries: parse + replay each candidate log in
/// the shared arena, then one [`Engine::equivalent_many`] sweep.
fn serve_equiv<S: Storage>(
    db: &mut DurableEngine<S>,
    jobs: &[Job],
    responses: &mut [Option<Response>],
) {
    let seq = db.seq();
    let (engine, state) = db.query();
    let mut candidates: Vec<ReplayState> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    for (ix, job) in jobs.iter().enumerate() {
        let Request::Equiv { log } = &job.req else {
            unreachable!("run_end grouped a non-equiv into an equiv run");
        };
        match log.parse::<UpdateLog>() {
            Ok(parsed) => match engine.replay(&parsed) {
                Ok(candidate) => {
                    candidates.push(candidate);
                    owners.push(ix);
                }
                Err(e) => responses[ix] = Some(error(ErrorKind::Replay, e.to_string())),
            },
            Err(e) => responses[ix] = Some(error(ErrorKind::Parse, e.to_string())),
        }
    }
    if candidates.is_empty() {
        return;
    }
    let refs: Vec<&ReplayState> = candidates.iter().collect();
    let verdicts = engine.equivalent_many(state, &refs);
    for (ix, verdict) in owners.into_iter().zip(verdicts) {
        responses[ix] = Some(Response::Equiv {
            seq,
            equivalent: verdict.is_equivalent(),
            differing: verdict.differing,
            undecided: verdict.undecided,
        });
    }
}
