//! Concrete-evaluation plumbing: the named structure catalogue on the
//! wire, deterministic fingerprint valuations, and value rendering.
//!
//! The protocol cannot ship a `Valuation` (clients don't know the
//! engine's `Atom` numbering, and the service may renumber across
//! recovery), so concrete queries name a structure and the service
//! derives every atom's value from a **name fingerprint** — the same
//! FNV-1a scheme the differential harness uses (`workload/tests/
//! differential.rs`): the same tuple/transaction name maps to the same
//! value in *any* engine. That is exactly what lets the concurrency soak
//! test replay a response's acknowledged prefix in a fresh
//! single-threaded engine and demand byte-identical rows.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use uprov_core::{Atom, MemoPool, UpdateStructure, Valuation};
use uprov_engine::{Engine, ReplayState};
use uprov_structures::{Bool, Clearance, Trust, Witnesses, Worlds};

/// The five verified catalogue structures, as named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StructureId {
    /// [`uprov_structures::Bool`] — does the tuple exist?
    Bool,
    /// [`uprov_structures::Worlds`] — 64 possible worlds in a `u64`.
    Worlds,
    /// [`uprov_structures::Clearance`] — `u16` compartment masks.
    Clearance,
    /// [`uprov_structures::Trust`] — `u32` vouching-source masks.
    Trust,
    /// [`uprov_structures::Witnesses`] — `BTreeSet<u32>` witness ids.
    Witnesses,
}

impl StructureId {
    /// Every wire-visible structure, in wire-name order.
    pub const ALL: [StructureId; 5] = [
        StructureId::Bool,
        StructureId::Worlds,
        StructureId::Clearance,
        StructureId::Trust,
        StructureId::Witnesses,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            StructureId::Bool => "bool",
            StructureId::Worlds => "worlds",
            StructureId::Clearance => "clearance",
            StructureId::Trust => "trust",
            StructureId::Witnesses => "witnesses",
        }
    }

    /// Per-structure fingerprint salt, so the same name takes independent
    /// values under different structures.
    fn salt(self) -> u64 {
        match self {
            StructureId::Bool => 0xB001,
            StructureId::Worlds => 0x0301_21D5,
            StructureId::Clearance => 0xC1EA_4444,
            StructureId::Trust => 0x7121_5757,
            StructureId::Witnesses => 0x3177_7E55,
        }
    }
}

impl fmt::Display for StructureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structure name that is not in the catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStructure {
    /// The offending name.
    pub name: String,
}

impl fmt::Display for UnknownStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown structure `{}` (expected one of bool, worlds, clearance, trust, witnesses)",
            self.name
        )
    }
}

impl std::error::Error for UnknownStructure {}

impl FromStr for StructureId {
    type Err = UnknownStructure;

    fn from_str(s: &str) -> Result<Self, UnknownStructure> {
        StructureId::ALL
            .into_iter()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| UnknownStructure { name: s.to_owned() })
    }
}

/// Deterministic 64-bit FNV-1a fingerprint of a name — engine-independent,
/// mirroring the differential harness, so service answers and oracle
/// answers are comparable by construction.
pub fn name_mask(name: &str, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt.wrapping_mul(0x100_0000_01b3);
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn witness_set(mask: u64) -> BTreeSet<u32> {
    (0..16).filter(|k| mask >> k & 1 == 1).collect()
}

/// The fingerprint valuation over every base-tuple and transaction atom of
/// `state`: atom named `n` takes `mk(name_mask(n, salt))`, anything else
/// (unreachable in practice) takes `top`.
fn fingerprint_valuation<S, F>(
    state: &ReplayState,
    salt: u64,
    top: S::Value,
    mk: F,
) -> Valuation<S::Value>
where
    S: UpdateStructure,
    F: Fn(u64) -> S::Value,
{
    let mut val = Valuation::constant(top);
    for (name, atom) in state.base_atoms() {
        val.set(atom, mk(name_mask(name, salt)));
    }
    for (name, atom) in state.txn_atoms() {
        val.set(atom, mk(name_mask(name, salt)));
    }
    val
}

fn rows_generic<S, R>(
    engine: &Engine,
    state: &ReplayState,
    structure: &S,
    base: Valuation<S::Value>,
    render: R,
    zeroed: &[Option<Atom>],
    threads: usize,
) -> Vec<Vec<(String, String)>>
where
    S: UpdateStructure,
    R: Fn(&S::Value) -> String,
{
    let valuations: Vec<Valuation<S::Value>> = zeroed
        .iter()
        .map(|z| match z {
            None => base.clone(),
            Some(atom) => base.clone().with(*atom, structure.zero()),
        })
        .collect();
    let pool = MemoPool::new();
    engine
        .eval_tuples_batch(state, structure, &valuations, &pool, threads)
        .into_iter()
        .map(|rows| {
            rows.into_iter()
                .map(|(name, v)| (name.to_owned(), render(&v)))
                .collect()
        })
        .collect()
}

/// Evaluates every tuple of `state` under `id`'s fingerprint valuation,
/// once per entry of `zeroed` — `None` is the plain whole-database query,
/// `Some(atom)` zeroes that atom first (the concrete abort /
/// deletion-propagation what-if). All entries share **one** evaluation
/// schedule ([`Engine::eval_tuples_batch`]); each result is bit-identical
/// to asking alone. Rows come back in sorted tuple order with values
/// rendered in each structure's canonical textual form.
pub fn eval_rows_batch(
    engine: &Engine,
    state: &ReplayState,
    id: StructureId,
    zeroed: &[Option<Atom>],
    threads: usize,
) -> Vec<Vec<(String, String)>> {
    let salt = id.salt();
    match id {
        // Mostly-present databases make deletion propagation visible
        // under Bool: 7 of 8 fingerprints are truthy.
        StructureId::Bool => rows_generic(
            engine,
            state,
            &Bool,
            fingerprint_valuation::<Bool, _>(state, salt, true, |m| m & 7 != 0),
            |v| v.to_string(),
            zeroed,
            threads,
        ),
        StructureId::Worlds => rows_generic(
            engine,
            state,
            &Worlds,
            fingerprint_valuation::<Worlds, _>(state, salt, u64::MAX, |m| m),
            |v| format!("{v:#018x}"),
            zeroed,
            threads,
        ),
        StructureId::Clearance => rows_generic(
            engine,
            state,
            &Clearance,
            fingerprint_valuation::<Clearance, _>(state, salt, u16::MAX, |m| m as u16),
            |v| format!("{v:#06x}"),
            zeroed,
            threads,
        ),
        StructureId::Trust => rows_generic(
            engine,
            state,
            &Trust,
            fingerprint_valuation::<Trust, _>(state, salt, u32::MAX, |m| m as u32),
            |v| format!("{v:#010x}"),
            zeroed,
            threads,
        ),
        StructureId::Witnesses => rows_generic(
            engine,
            state,
            &Witnesses,
            fingerprint_valuation::<Witnesses, _>(state, salt, witness_set(u64::MAX), witness_set),
            |v| {
                let ids: Vec<String> = v.iter().map(|w| w.to_string()).collect();
                format!("{{{}}}", ids.join(","))
            },
            zeroed,
            threads,
        ),
    }
}

/// [`eval_rows_batch`] for one query.
pub fn eval_rows(
    engine: &Engine,
    state: &ReplayState,
    id: StructureId,
    zeroed: Option<Atom>,
    threads: usize,
) -> Vec<(String, String)> {
    eval_rows_batch(engine, state, id, &[zeroed], threads)
        .pop()
        .expect("one query in, one row set out")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_ids_round_trip() {
        for id in StructureId::ALL {
            assert_eq!(id.as_str().parse::<StructureId>(), Ok(id));
        }
        assert!("boolean".parse::<StructureId>().is_err());
    }

    #[test]
    fn batched_rows_match_single_queries() {
        let mut engine = Engine::new();
        let log = "base x\nbase y\nbegin t\ninsert x\nmodify z <- y\ncommit\n"
            .parse()
            .unwrap();
        let state = engine.replay(&log).unwrap();
        let t = state.txn_atom("t").unwrap();
        let y = state.base_atom("y").unwrap();
        for id in StructureId::ALL {
            let zeroed = [None, Some(t), Some(y)];
            let batched = eval_rows_batch(&engine, &state, id, &zeroed, 2);
            for (z, batch_rows) in zeroed.iter().zip(&batched) {
                let single = eval_rows(&engine, &state, id, *z, 1);
                assert_eq!(&single, batch_rows, "{id}: batch diverged");
            }
        }
    }

    #[test]
    fn fingerprints_are_engine_independent() {
        // Two engines replaying different logs that share names: shared
        // names get identical values despite different atom numbering.
        let mut e1 = Engine::new();
        let s1 = e1
            .replay(
                &"base a\nbase b\nbegin t\ninsert b\ncommit\n"
                    .parse()
                    .unwrap(),
            )
            .unwrap();
        let mut e2 = Engine::new();
        let s2 = e2
            .replay(&"base b\nbegin t\ninsert b\ncommit\n".parse().unwrap())
            .unwrap();
        for id in StructureId::ALL {
            let r1 = eval_rows(&e1, &s1, id, None, 1);
            let r2 = eval_rows(&e2, &s2, id, None, 1);
            let b1 = r1.iter().find(|(n, _)| n == "b").unwrap();
            let b2 = r2.iter().find(|(n, _)| n == "b").unwrap();
            assert_eq!(b1.1, b2.1, "{id}: value of b must not depend on the engine");
        }
    }
}
