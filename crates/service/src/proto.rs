//! The line-oriented JSON protocol: one request per line in, one response
//! per line out.
//!
//! The codec is hand-rolled (the container is offline; no serde) and
//! hardened the same way the engine's `log.rs` parser is: parsing is total
//! over arbitrary input — malformed bytes yield a typed [`ProtoError`],
//! **never** a panic — and printing is a fixed point, `parse(print(x))`
//! reprints byte-identically (property-tested over every variant in
//! `tests/proto.rs`).
//!
//! The JSON dialect is deliberately small: objects with string keys,
//! strings, unsigned integers, booleans and arrays — exactly what the
//! message shapes below need. Anything else (floats, `null`, nesting the
//! shapes don't use) is a typed error, not an extension point.
//!
//! # Requests
//!
//! ```text
//! {"op":"append","log":"base x\n..."}        durable append (writer)
//! {"op":"abort","txn":"t1","structure":"bool"}     concrete abort view
//! {"op":"delete","tuple":"x","structure":"worlds"} deletion propagation
//! {"op":"eval","structure":"trust"}          whole-database evaluation
//! {"op":"abort_symbolic","txn":"t1"}         symbolic abort view (writer)
//! {"op":"equiv","log":"..."}                 equivalence vs. a candidate log
//! {"op":"snapshot"}                          checkpoint (writer)
//! {"op":"stats"}                             service counters
//! {"op":"set_budget","entries":4096}         per-client cache budget
//! {"op":"shutdown"}                          drain and stop
//! ```
//!
//! # Responses
//!
//! Every success carries `seq` — the number of appends visible in the
//! state that answered it; the soak oracle replays exactly that prefix.
//! Errors carry a machine-readable `err` kind plus a human message.

use std::fmt;
use std::str::FromStr;

use crate::values::StructureId;

/// A malformed protocol line. Total and typed, like the update-log parser:
/// lexical damage reports where, shape damage reports what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not (our dialect of) JSON: byte offset + what went
    /// wrong there.
    Json {
        /// Byte offset of the offending character.
        at: usize,
        /// What the lexer expected or found.
        message: String,
    },
    /// The line is well-formed JSON but not a known message shape.
    Shape {
        /// Which key or value violated the shape.
        message: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json { at, message } => write!(f, "json error at byte {at}: {message}"),
            ProtoError::Shape { message } => write!(f, "bad message shape: {message}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn shape(message: impl Into<String>) -> ProtoError {
    ProtoError::Shape {
        message: message.into(),
    }
}

/// A client request. See the [module docs](self) for the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Durable append of a textual update log.
    Append {
        /// The log, in the `UpdateLog` line format.
        log: String,
    },
    /// Concrete abort query under a named structure.
    AbortEval {
        /// Transaction to abort.
        txn: String,
        /// Structure to evaluate under.
        structure: StructureId,
    },
    /// Concrete deletion-propagation query under a named structure.
    DeleteBaseEval {
        /// Base tuple to delete.
        tuple: String,
        /// Structure to evaluate under.
        structure: StructureId,
    },
    /// Whole-database evaluation under a named structure.
    EvalAll {
        /// Structure to evaluate under.
        structure: StructureId,
    },
    /// Symbolic abort query (normal forms over surviving annotations).
    AbortSymbolic {
        /// Transaction to abort.
        txn: String,
    },
    /// Equivalence of the resident state against a candidate log.
    Equiv {
        /// The candidate log, replayed fresh and compared.
        log: String,
    },
    /// Checkpoint: snapshot + WAL reset.
    Snapshot,
    /// Service counters.
    Stats,
    /// Set this client's normal-form/substitution cache budget.
    SetBudget {
        /// Max cached entries while serving this client; `None` lifts the
        /// cap.
        entries: Option<u64>,
    },
    /// Drain in-flight requests and stop the service.
    Shutdown,
}

/// One row of a concrete evaluation: tuple name and rendered value.
pub type Row = (String, String);

/// One row of a symbolic view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicRow {
    /// Tuple name.
    pub name: String,
    /// Rendered normal-form provenance over the surviving annotations.
    pub provenance: String,
    /// The normalizer saturated on this tuple (the rendered form is
    /// rewrite-equivalent but not canonical).
    pub saturated: bool,
}

/// Machine-readable error category on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse.
    Parse,
    /// The appended log was rejected by validation.
    Replay,
    /// A query named an unknown transaction or tuple.
    Query,
    /// A bounded queue was full — retry later.
    Overloaded,
    /// The service is draining; no new requests.
    ShuttingDown,
    /// The storage backend failed.
    Io,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Replay => "replay",
            ErrorKind::Query => "query",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Io => "io",
        }
    }

    fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "replay" => ErrorKind::Replay,
            "query" => ErrorKind::Query,
            "overloaded" => ErrorKind::Overloaded,
            "shutting_down" => ErrorKind::ShuttingDown,
            "io" => ErrorKind::Io,
            _ => return None,
        })
    }
}

/// A service response. Every success variant carries the append sequence
/// number its answer reflects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The append committed durably.
    Appended {
        /// Appends visible after this one (its 1-based position).
        seq: u64,
        /// Updates applied from the log.
        applied: u64,
    },
    /// Concrete evaluation rows, in sorted tuple order.
    Rows {
        /// Appends visible in the answering state.
        seq: u64,
        /// `(tuple, rendered value)` rows.
        rows: Vec<Row>,
    },
    /// Symbolic view rows, in sorted tuple order.
    Symbolic {
        /// Appends visible in the answering state.
        seq: u64,
        /// Per-tuple normal forms.
        rows: Vec<SymbolicRow>,
    },
    /// Equivalence verdict.
    Equiv {
        /// Appends visible in the answering state.
        seq: u64,
        /// No tuple differs and none is undecided.
        equivalent: bool,
        /// Tuples with provably different normal forms.
        differing: Vec<String>,
        /// Tuples the normalizer saturated on.
        undecided: Vec<String>,
    },
    /// Checkpoint completed.
    Snapshotted {
        /// Appends covered by the snapshot.
        seq: u64,
    },
    /// Service counters.
    Stats {
        /// Appends visible.
        seq: u64,
        /// Tuples with recorded provenance.
        tuples: u64,
        /// Interned arena nodes.
        nodes: u64,
        /// Live cache entries (NF + substitution).
        cached: u64,
        /// Coalesced batches executed so far.
        batches: u64,
        /// Requests that rode a coalesced batch of ≥ 2.
        coalesced: u64,
    },
    /// Budget applied.
    BudgetSet {
        /// Appends visible.
        seq: u64,
    },
    /// Shutdown acknowledged; the service is draining.
    Bye {
        /// Appends visible at shutdown.
        seq: u64,
    },
    /// The request failed; nothing changed.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable cause.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// The tiny JSON dialect.

#[derive(Debug, Clone, PartialEq, Eq)]
enum Json {
    Str(String),
    Int(u64),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Self {
        Lexer {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ProtoError {
        ProtoError::Json {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ProtoError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", want as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ProtoError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ProtoError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, ProtoError> {
        // Digits accumulate directly (checked): no slice back over the
        // input, no intermediate string — the parse stays total.
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(d @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(d - b'0')))
                .ok_or_else(|| self.err("integer out of range"))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(self.err("only unsigned integers are supported"));
        }
        Ok(Json::Int(value))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 3; // +1 more below, like every branch
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched: find the
                    // char boundary and copy the whole scalar.
                    let rest = std::str::from_utf8(self.bytes.get(self.pos..).unwrap_or_default())
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let Some(ch) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ProtoError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ProtoError> {
        self.expect_byte(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse_json(line: &str) -> Result<Json, ProtoError> {
    let mut lx = Lexer::new(line);
    let value = lx.value()?;
    lx.skip_ws();
    if lx.pos != lx.bytes.len() {
        return Err(lx.err("trailing garbage after message"));
    }
    Ok(value)
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_str_list(f: &mut fmt::Formatter<'_>, items: &[String]) -> fmt::Result {
    f.write_str("[")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write_escaped(f, item)?;
    }
    f.write_str("]")
}

// ---------------------------------------------------------------------------
// Shape extraction helpers.

struct Fields(Vec<(String, Json)>);

impl Fields {
    fn take(&mut self, key: &str) -> Option<Json> {
        let ix = self.0.iter().position(|(k, _)| k == key)?;
        Some(self.0.remove(ix).1)
    }

    fn string(&mut self, key: &str) -> Result<String, ProtoError> {
        match self.take(key) {
            Some(Json::Str(s)) => Ok(s),
            Some(_) => Err(shape(format!("`{key}` must be a string"))),
            None => Err(shape(format!("missing key `{key}`"))),
        }
    }

    fn int(&mut self, key: &str) -> Result<u64, ProtoError> {
        match self.take(key) {
            Some(Json::Int(n)) => Ok(n),
            Some(_) => Err(shape(format!("`{key}` must be an unsigned integer"))),
            None => Err(shape(format!("missing key `{key}`"))),
        }
    }

    fn boolean(&mut self, key: &str) -> Result<bool, ProtoError> {
        match self.take(key) {
            Some(Json::Bool(b)) => Ok(b),
            Some(_) => Err(shape(format!("`{key}` must be a boolean"))),
            None => Err(shape(format!("missing key `{key}`"))),
        }
    }

    fn structure(&mut self) -> Result<StructureId, ProtoError> {
        let name = self.string("structure")?;
        StructureId::from_str(&name).map_err(|e| shape(format!("`structure`: {e}")))
    }

    fn str_list(&mut self, key: &str) -> Result<Vec<String>, ProtoError> {
        match self.take(key) {
            Some(Json::Arr(items)) => items
                .into_iter()
                .map(|item| match item {
                    Json::Str(s) => Ok(s),
                    _ => Err(shape(format!("`{key}` must hold strings"))),
                })
                .collect(),
            Some(_) => Err(shape(format!("`{key}` must be an array"))),
            None => Err(shape(format!("missing key `{key}`"))),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        match self.0.first() {
            None => Ok(()),
            Some((k, _)) => Err(shape(format!("unknown key `{k}`"))),
        }
    }
}

fn as_object(value: Json) -> Result<Fields, ProtoError> {
    match value {
        Json::Obj(fields) => Ok(Fields(fields)),
        _ => Err(shape("message must be a JSON object")),
    }
}

// ---------------------------------------------------------------------------
// Request codec.

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Append { log } => {
                f.write_str("{\"op\":\"append\",\"log\":")?;
                write_escaped(f, log)?;
                f.write_str("}")
            }
            Request::AbortEval { txn, structure } => {
                f.write_str("{\"op\":\"abort\",\"txn\":")?;
                write_escaped(f, txn)?;
                write!(f, ",\"structure\":\"{structure}\"}}")
            }
            Request::DeleteBaseEval { tuple, structure } => {
                f.write_str("{\"op\":\"delete\",\"tuple\":")?;
                write_escaped(f, tuple)?;
                write!(f, ",\"structure\":\"{structure}\"}}")
            }
            Request::EvalAll { structure } => {
                write!(f, "{{\"op\":\"eval\",\"structure\":\"{structure}\"}}")
            }
            Request::AbortSymbolic { txn } => {
                f.write_str("{\"op\":\"abort_symbolic\",\"txn\":")?;
                write_escaped(f, txn)?;
                f.write_str("}")
            }
            Request::Equiv { log } => {
                f.write_str("{\"op\":\"equiv\",\"log\":")?;
                write_escaped(f, log)?;
                f.write_str("}")
            }
            Request::Snapshot => f.write_str("{\"op\":\"snapshot\"}"),
            Request::Stats => f.write_str("{\"op\":\"stats\"}"),
            Request::SetBudget { entries: Some(n) } => {
                write!(f, "{{\"op\":\"set_budget\",\"entries\":{n}}}")
            }
            Request::SetBudget { entries: None } => f.write_str("{\"op\":\"set_budget\"}"),
            Request::Shutdown => f.write_str("{\"op\":\"shutdown\"}"),
        }
    }
}

impl FromStr for Request {
    type Err = ProtoError;

    fn from_str(line: &str) -> Result<Self, ProtoError> {
        let mut fields = as_object(parse_json(line)?)?;
        let op = fields.string("op")?;
        let req = match op.as_str() {
            "append" => Request::Append {
                log: fields.string("log")?,
            },
            "abort" => Request::AbortEval {
                txn: fields.string("txn")?,
                structure: fields.structure()?,
            },
            "delete" => Request::DeleteBaseEval {
                tuple: fields.string("tuple")?,
                structure: fields.structure()?,
            },
            "eval" => Request::EvalAll {
                structure: fields.structure()?,
            },
            "abort_symbolic" => Request::AbortSymbolic {
                txn: fields.string("txn")?,
            },
            "equiv" => Request::Equiv {
                log: fields.string("log")?,
            },
            "snapshot" => Request::Snapshot,
            "stats" => Request::Stats,
            "set_budget" => Request::SetBudget {
                entries: match fields.take("entries") {
                    None => None,
                    Some(Json::Int(n)) => Some(n),
                    Some(_) => {
                        return Err(shape("`entries` must be an unsigned integer"));
                    }
                },
            },
            "shutdown" => Request::Shutdown,
            other => return Err(shape(format!("unknown op `{other}`"))),
        };
        fields.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response codec.

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Appended { seq, applied } => {
                write!(
                    f,
                    "{{\"ok\":\"appended\",\"seq\":{seq},\"applied\":{applied}}}"
                )
            }
            Response::Rows { seq, rows } => {
                write!(f, "{{\"ok\":\"rows\",\"seq\":{seq},\"rows\":[")?;
                for (i, (name, value)) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str("[")?;
                    write_escaped(f, name)?;
                    f.write_str(",")?;
                    write_escaped(f, value)?;
                    f.write_str("]")?;
                }
                f.write_str("]}")
            }
            Response::Symbolic { seq, rows } => {
                write!(f, "{{\"ok\":\"symbolic\",\"seq\":{seq},\"rows\":[")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str("[")?;
                    write_escaped(f, &row.name)?;
                    f.write_str(",")?;
                    write_escaped(f, &row.provenance)?;
                    write!(f, ",{}]", row.saturated)?;
                }
                f.write_str("]}")
            }
            Response::Equiv {
                seq,
                equivalent,
                differing,
                undecided,
            } => {
                write!(
                    f,
                    "{{\"ok\":\"equiv\",\"seq\":{seq},\"equivalent\":{equivalent},\"differing\":"
                )?;
                write_str_list(f, differing)?;
                f.write_str(",\"undecided\":")?;
                write_str_list(f, undecided)?;
                f.write_str("}")
            }
            Response::Snapshotted { seq } => {
                write!(f, "{{\"ok\":\"snapshotted\",\"seq\":{seq}}}")
            }
            Response::Stats {
                seq,
                tuples,
                nodes,
                cached,
                batches,
                coalesced,
            } => write!(
                f,
                "{{\"ok\":\"stats\",\"seq\":{seq},\"tuples\":{tuples},\"nodes\":{nodes},\
                 \"cached\":{cached},\"batches\":{batches},\"coalesced\":{coalesced}}}"
            ),
            Response::BudgetSet { seq } => write!(f, "{{\"ok\":\"budget_set\",\"seq\":{seq}}}"),
            Response::Bye { seq } => write!(f, "{{\"ok\":\"bye\",\"seq\":{seq}}}"),
            Response::Error { kind, message } => {
                write!(f, "{{\"err\":\"{}\",\"message\":", kind.as_str())?;
                write_escaped(f, message)?;
                f.write_str("}")
            }
        }
    }
}

impl FromStr for Response {
    type Err = ProtoError;

    fn from_str(line: &str) -> Result<Self, ProtoError> {
        let mut fields = as_object(parse_json(line)?)?;
        if let Some(kind) = fields.take("err") {
            let Json::Str(kind) = kind else {
                return Err(shape("`err` must be a string"));
            };
            let kind = ErrorKind::parse(&kind)
                .ok_or_else(|| shape(format!("unknown error kind `{kind}`")))?;
            let message = fields.string("message")?;
            fields.finish()?;
            return Ok(Response::Error { kind, message });
        }
        let ok = fields.string("ok")?;
        let resp = match ok.as_str() {
            "appended" => Response::Appended {
                seq: fields.int("seq")?,
                applied: fields.int("applied")?,
            },
            "rows" => {
                let seq = fields.int("seq")?;
                let rows = match fields.take("rows") {
                    Some(Json::Arr(items)) => items
                        .into_iter()
                        .map(|item| match item {
                            Json::Arr(pair) => match <[Json; 2]>::try_from(pair) {
                                Ok([Json::Str(name), Json::Str(value)]) => Ok((name, value)),
                                _ => Err(shape("each row must be [name, value]")),
                            },
                            _ => Err(shape("each row must be an array")),
                        })
                        .collect::<Result<Vec<Row>, ProtoError>>()?,
                    _ => return Err(shape("`rows` must be an array")),
                };
                Response::Rows { seq, rows }
            }
            "symbolic" => {
                let seq = fields.int("seq")?;
                let rows = match fields.take("rows") {
                    Some(Json::Arr(items)) => items
                        .into_iter()
                        .map(|item| match item {
                            Json::Arr(triple) => match <[Json; 3]>::try_from(triple) {
                                Ok(
                                    [Json::Str(name), Json::Str(provenance), Json::Bool(saturated)],
                                ) => Ok(SymbolicRow {
                                    name,
                                    provenance,
                                    saturated,
                                }),
                                _ => Err(shape("each row must be [name, provenance, saturated]")),
                            },
                            _ => Err(shape("each row must be an array")),
                        })
                        .collect::<Result<Vec<SymbolicRow>, ProtoError>>()?,
                    _ => return Err(shape("`rows` must be an array")),
                };
                Response::Symbolic { seq, rows }
            }
            "equiv" => Response::Equiv {
                seq: fields.int("seq")?,
                equivalent: fields.boolean("equivalent")?,
                differing: fields.str_list("differing")?,
                undecided: fields.str_list("undecided")?,
            },
            "snapshotted" => Response::Snapshotted {
                seq: fields.int("seq")?,
            },
            "stats" => Response::Stats {
                seq: fields.int("seq")?,
                tuples: fields.int("tuples")?,
                nodes: fields.int("nodes")?,
                cached: fields.int("cached")?,
                batches: fields.int("batches")?,
                coalesced: fields.int("coalesced")?,
            },
            "budget_set" => Response::BudgetSet {
                seq: fields.int("seq")?,
            },
            "bye" => Response::Bye {
                seq: fields.int("seq")?,
            },
            other => return Err(shape(format!("unknown ok kind `{other}`"))),
        };
        fields.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_escapes() {
        let req = Request::Append {
            log: "base x\nbegin \"t\"\ncommit\n".to_owned(),
        };
        let printed = req.to_string();
        let reparsed: Request = printed.parse().expect("own output parses");
        assert_eq!(reparsed, req);
        assert_eq!(reparsed.to_string(), printed, "printing is a fixed point");
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for line in [
            "",
            "{",
            "nonsense",
            "{\"op\":\"abort\"}",
            "{\"op\":\"abort\",\"txn\":\"t\",\"structure\":\"no-such\"}",
            "{\"op\":\"append\",\"log\":\"x\",\"extra\":1}",
            "{\"op\":\"eval\",\"structure\":3}",
            "{\"ok\":\"rows\",\"seq\":-1,\"rows\":[]}",
        ] {
            assert!(line.parse::<Request>().is_err(), "accepted: {line:?}");
        }
    }
}
