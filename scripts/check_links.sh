#!/usr/bin/env bash
# Markdown link check for the curated documentation — README.md, ROADMAP.md
# and docs/: every relative inline link target must exist on disk. (The
# generated reference dumps PAPER.md/PAPERS.md/SNIPPETS.md are excluded:
# they carry links from their upstream extraction, not ours.) The build
# environment is offline, so http(s)/mailto links are skipped, as are
# pure-fragment (#...) anchors. Run from anywhere; exits non-zero after
# listing every broken target.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in README.md ROADMAP.md CHANGES.md docs/*.md; do
  [ -f "$f" ] || continue
  # Inline links only: [text](target). Rustdoc-style [`Item`] brackets
  # (used heavily in docs/PAPER_MAP.md) have no (...) and are ignored.
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
      '#'*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    dir=$(dirname "$f")
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $f -> $link"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "markdown links OK"
