#!/usr/bin/env bash
# Markdown link check for the curated documentation — README.md, ROADMAP.md
# and docs/: every relative inline link target must exist on disk, and
# every fragment (`file.md#section`, or a pure `#section` within the same
# file) must name a real heading in the target file (GitHub-style slugs).
# (The generated reference dumps PAPER.md/PAPERS.md/SNIPPETS.md are
# excluded: they carry links from their upstream extraction, not ours.)
# The build environment is offline, so http(s)/mailto links are skipped.
# Run from anywhere; exits non-zero after listing every broken target.
set -euo pipefail
cd "$(dirname "$0")/.."

# GitHub's heading-anchor slug, approximately: lowercase, backticks/markup
# stripped, punctuation dropped (keeping alphanumerics, spaces, hyphens,
# underscores), spaces to hyphens.
slugify() {
  printf '%s' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[`*]//g; s/[^a-z0-9 _-]//g; s/ /-/g'
}

# anchors_of FILE: every heading anchor FILE exports, one per line —
# headings inside ``` fences are NOT anchors (a bash comment in a code
# block must not satisfy the check), and repeated headings get GitHub's
# -1/-2/… dedup suffixes (so a link to the second occurrence passes).
# NOTE: heading matching stays in grep — mawk has no {1,6} intervals and
# silently matches nothing; awk only tracks the fence state.
anchors_of() {
  local head
  awk '/^```/ { fence = !fence; next } !fence' "$1" \
    | { grep -E '^#{1,6} ' || true; } \
    | sed -E 's/^#{1,6} +//' \
    | while IFS= read -r head; do
        slugify "$head"
        printf '\n'
      done \
    | awk '{ if (seen[$0]++) print $0 "-" seen[$0] - 1; else print $0 }'
}

# has_anchor FILE FRAGMENT: true iff FILE exports the anchor FRAGMENT.
# (A read loop, not `anchors_of | grep -q`: grep -q exiting early would
# SIGPIPE the producer and, under pipefail, fail a real match.)
has_anchor() {
  local frag="$2" line
  while IFS= read -r line; do
    if [ "$line" = "$frag" ]; then
      return 0
    fi
  done < <(anchors_of "$1")
  return 1
}

fail=0
for f in README.md ROADMAP.md CHANGES.md docs/*.md; do
  [ -f "$f" ] || continue
  # Inline links only: [text](target). Rustdoc-style [`Item`] brackets
  # (used heavily in docs/PAPER_MAP.md) have no (...) and are ignored.
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
    esac
    target="${link%%#*}"
    frag=""
    case "$link" in
      *'#'*) frag="${link#*#}" ;;
    esac
    dir=$(dirname "$f")
    resolved=""
    if [ -z "$target" ]; then
      # Pure fragment: anchors into the current file.
      resolved="$f"
    elif [ -e "$dir/$target" ]; then
      resolved="$dir/$target"
    elif [ -e "$target" ]; then
      resolved="$target"
    else
      echo "BROKEN LINK: $f -> $link"
      fail=1
      continue
    fi
    # Anchor check, for markdown targets with a fragment.
    if [ -n "$frag" ]; then
      case "$resolved" in
        *.md)
          if ! has_anchor "$resolved" "$frag"; then
            echo "BROKEN ANCHOR: $f -> $link (no heading slugs to '#$frag' in $resolved)"
            fail=1
          fi
          ;;
      esac
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "markdown links + anchors OK"
